package cpu

import (
	"autorfm/internal/clk"
	"autorfm/internal/event"
)

// Record is one trace entry: Gap non-memory instructions, then one memory
// access of the 64B line Line.
type Record struct {
	Gap   int
	Line  uint64
	Write bool
	// DependsPrev marks a load whose address depends on the previous load
	// (pointer chasing): the core cannot issue it until that load's data
	// returns, serialising the two and destroying memory-level parallelism.
	// This is the knob that differentiates irregular workloads (mcf, GAP)
	// from streaming ones.
	DependsPrev bool
}

// Stream supplies trace records. Implementations are typically infinite
// generators (internal/workload); ok=false ends the core's execution early.
type Stream interface {
	Next() (Record, bool)
}

// MemPort is where the core sends memory accesses (the LLC).
type MemPort interface {
	Access(line uint64, write bool, done func(clk.Tick))
}

// Config parameterises a core.
type Config struct {
	Width        int   // dispatch width, instructions per cycle
	ROB          int   // reorder-buffer entries
	Instructions int64 // retire target; the core stops after this many
}

// DefaultConfig returns the Table IV core: 4-wide, 256-entry ROB.
func DefaultConfig(instructions int64) Config {
	return Config{Width: 4, ROB: 256, Instructions: instructions}
}

// memOp is one in-flight memory operation: its scheduled issue event (it
// implements event.Handler), and for loads also the ROB entry tracking
// completion. Ops are free-listed per core; doneFn is bound once when the
// op is first created, so re-arming an op allocates nothing.
type memOp struct {
	c       *Core
	line    uint64
	write   bool
	idx     int64 // instruction index of the load
	done    bool
	retired bool // popped from the ROB window while still the dependence target
	doneFn  func(clk.Tick)
	next    *memOp // free-list link
}

// OnEvent issues the access at its scheduled time. Stores are posted and
// their op retires immediately; loads stay live until doneFn fires.
func (m *memOp) OnEvent(clk.Tick) {
	if m.write {
		c := m.c
		c.port.Access(m.line, true, nil)
		c.putOp(m)
		return
	}
	m.c.port.Access(m.line, false, m.doneFn)
}

// Core is one simulated core.
type Core struct {
	ID   int
	cfg  Config
	strm Stream
	port MemPort
	q    *event.Queue

	dispatched int64    // instructions dispatched so far
	tD         clk.Tick // dispatch-frontier virtual time
	carry      int      // sub-cycle dispatch remainder

	// pending is a ring buffer of outstanding loads, oldest first. Its
	// capacity is a power of two so head arithmetic is a mask.
	pending []*memOp
	head, n int

	lastLoad *memOp // most recently dispatched load (dependence target)
	freeOps  *memOp // memOp free list
	adv      *event.Timer
	rec      Record
	haveRec  bool
	blocked  bool // waiting for the ROB head to complete
	running  bool // an advance pass is on the stack (re-entrancy guard)

	// Finished is true once the core has retired its instruction target.
	Finished bool
	// FinishTime is the time the last instruction retired.
	FinishTime clk.Tick
	// OnFinish, when set, is called exactly once, at the moment Finished
	// becomes true. The sim package uses it to maintain a finished-core
	// counter instead of scanning every core per event.
	OnFinish func()

	// Loads/Stores count issued memory operations.
	Loads, Stores uint64
}

// horizon bounds how far ahead of simulation time the dispatch frontier may
// run before the core yields to the event queue (keeps the queue small for
// compute-heavy phases).
const horizon = clk.Tick(4000) // 1µs

// New creates a core reading from strm and accessing memory through port.
func New(id int, cfg Config, strm Stream, port MemPort, q *event.Queue) *Core {
	c := &Core{ID: id, cfg: cfg, strm: strm, port: port, q: q}
	c.adv = event.NewTimer(q, c.advance)
	return c
}

// Start begins execution at the current simulation time.
func (c *Core) Start() {
	c.adv.At(c.q.Now())
}

// Retired returns the number of retired instructions (== dispatched for
// this model once pending loads complete).
func (c *Core) Retired() int64 { return c.dispatched }

// getOp takes a memOp from the free list, binding its completion callback
// on first creation so steady-state reuse allocates nothing.
func (c *Core) getOp() *memOp {
	m := c.freeOps
	if m == nil {
		m = &memOp{c: c}
		m.doneFn = func(now clk.Tick) { m.c.complete(m, now) }
	} else {
		c.freeOps = m.next
	}
	m.next = nil
	m.done, m.retired = false, false
	return m
}

// putOp returns a memOp to the free list. Callers must guarantee no live
// reference remains (its issue event fired, its completion fired, and it
// left both the ROB window and the dependence slot).
func (c *Core) putOp(m *memOp) {
	m.next = c.freeOps
	c.freeOps = m
}

// pushPending appends a load to the ROB window, growing the ring if the
// configured ROB exceeds the current capacity.
func (c *Core) pushPending(m *memOp) {
	if c.n == len(c.pending) {
		grown := make([]*memOp, max(16, 2*len(c.pending)))
		for i := 0; i < c.n; i++ {
			grown[i] = c.pending[(c.head+i)&(len(c.pending)-1)]
		}
		c.pending, c.head = grown, 0
	}
	c.pending[(c.head+c.n)&(len(c.pending)-1)] = m
	c.n++
}

// retireHead pops completed loads from the front of the ROB, recycling
// each unless it is still the dependence target (recycled on displacement).
func (c *Core) retireHead() {
	for c.n > 0 {
		m := c.pending[c.head]
		if !m.done {
			return
		}
		c.pending[c.head] = nil
		c.head = (c.head + 1) & (len(c.pending) - 1)
		c.n--
		if m != c.lastLoad {
			c.putOp(m)
		} else {
			m.retired = true
		}
	}
}

// finish marks the core done and fires the one-shot completion hook.
func (c *Core) finish(t clk.Tick) {
	c.Finished = true
	c.FinishTime = t
	if c.OnFinish != nil {
		c.OnFinish()
	}
}

// advance dispatches as far as the ROB window and the horizon allow.
func (c *Core) advance(now clk.Tick) {
	if c.Finished || c.running {
		return
	}
	c.running = true
	defer func() { c.running = false }()
	if c.tD < now {
		c.tD = now
	}
	for {
		c.retireHead()
		if c.dispatched >= c.cfg.Instructions {
			if c.n == 0 {
				c.finish(clk.Max(c.tD, now))
			}
			// Otherwise wait for the remaining loads to complete.
			return
		}
		if !c.haveRec {
			rec, ok := c.strm.Next()
			if !ok {
				// Stream exhausted: treat as finished at the frontier.
				if c.n == 0 {
					c.finish(clk.Max(c.tD, now))
				}
				return
			}
			c.rec, c.haveRec = rec, true
		}
		// ROB window: the record's memory access would be instruction
		// dispatched+gap+1; it must be within ROB of the oldest pending.
		if c.n > 0 {
			memIdx := c.dispatched + int64(c.rec.Gap) + 1
			if memIdx-c.pending[c.head].idx >= int64(c.cfg.ROB) {
				c.blocked = true
				return // resumed by the head load's completion
			}
		}
		// A dependent load cannot issue until its producer returns.
		if c.rec.DependsPrev && c.lastLoad != nil && !c.lastLoad.done {
			c.blocked = true
			return // resumed by the producer's completion
		}
		c.blocked = false
		// Dispatch the gap and the memory instruction at Width per cycle.
		n := c.rec.Gap + 1 + c.carry
		c.tD += clk.Tick(n / c.cfg.Width)
		c.carry = n % c.cfg.Width
		c.dispatched += int64(c.rec.Gap)

		// Dispatch the memory access.
		c.dispatched++
		c.haveRec = false
		issueAt := clk.Max(c.tD, now)
		m := c.getOp()
		m.line, m.write = c.rec.Line, c.rec.Write
		if m.write {
			c.Stores++
		} else {
			c.Loads++
			m.idx = c.dispatched
			c.pushPending(m)
			if old := c.lastLoad; old != nil && old.retired {
				c.putOp(old)
			}
			c.lastLoad = m
		}
		c.q.Schedule(issueAt, m)
		// Yield if the frontier has run far ahead; the queue will deliver
		// completions and we resume from them, or from this timer.
		if c.tD > now+horizon {
			c.adv.At(c.tD)
			return
		}
	}
}

// complete marks a load done and resumes the core if the ROB head cleared,
// a dependent load was waiting on this producer, or the core was done
// dispatching and waiting on stragglers.
func (c *Core) complete(m *memOp, now clk.Tick) {
	m.done = true
	switch {
	case c.n > 0 && c.pending[c.head] == m:
		c.advance(now)
	case c.lastLoad == m && c.blocked:
		c.advance(now)
	case c.dispatched >= c.cfg.Instructions:
		c.advance(now)
	}
}

// IPC returns retired instructions per core cycle (ticks are cycles).
func (c *Core) IPC() float64 {
	if c.FinishTime == 0 {
		return 0
	}
	return float64(c.dispatched) / float64(c.FinishTime)
}
