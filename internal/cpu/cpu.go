// Package cpu models the out-of-order cores of the baseline system
// (Table IV: 8 cores, 4GHz, 4-wide, 256-entry ROB) at the level of detail
// that matters for memory-system studies: dispatch bandwidth, the ROB
// window limiting memory-level parallelism, and in-order retirement that
// blocks on the oldest incomplete load.
//
// The model is trace-driven and event-driven. A core consumes a stream of
// records, each "gap" non-memory instructions followed by one memory
// access. Non-memory instructions dispatch at 4 per cycle and retire
// immediately; loads occupy the ROB until their data returns (from the LLC
// or DRAM); stores drain through a store buffer and never block. The core
// stalls when the instruction it wants to dispatch is more than ROB-size
// instructions ahead of the oldest incomplete load — the classic
// ROB-window MLP limit.
package cpu

import (
	"autorfm/internal/clk"
	"autorfm/internal/event"
)

// Record is one trace entry: Gap non-memory instructions, then one memory
// access of the 64B line Line.
type Record struct {
	Gap   int
	Line  uint64
	Write bool
	// DependsPrev marks a load whose address depends on the previous load
	// (pointer chasing): the core cannot issue it until that load's data
	// returns, serialising the two and destroying memory-level parallelism.
	// This is the knob that differentiates irregular workloads (mcf, GAP)
	// from streaming ones.
	DependsPrev bool
}

// Stream supplies trace records. Implementations are typically infinite
// generators (internal/workload); ok=false ends the core's execution early.
type Stream interface {
	Next() (Record, bool)
}

// MemPort is where the core sends memory accesses (the LLC).
type MemPort interface {
	Access(line uint64, write bool, done func(clk.Tick))
}

// Config parameterises a core.
type Config struct {
	Width        int   // dispatch width, instructions per cycle
	ROB          int   // reorder-buffer entries
	Instructions int64 // retire target; the core stops after this many
}

// DefaultConfig returns the Table IV core: 4-wide, 256-entry ROB.
func DefaultConfig(instructions int64) Config {
	return Config{Width: 4, ROB: 256, Instructions: instructions}
}

type pendingLoad struct {
	idx  int64 // instruction index of the load
	done bool
}

// Core is one simulated core.
type Core struct {
	ID   int
	cfg  Config
	strm Stream
	port MemPort
	q    *event.Queue

	dispatched int64    // instructions dispatched so far
	tD         clk.Tick // dispatch-frontier virtual time
	carry      int      // sub-cycle dispatch remainder

	pending  []*pendingLoad // outstanding loads, oldest first
	lastLoad *pendingLoad   // most recently dispatched load (dependence target)
	rec      Record
	haveRec  bool
	blocked  bool // waiting for the ROB head to complete
	running  bool // an advance pass is on the stack (re-entrancy guard)

	// Finished is true once the core has retired its instruction target.
	Finished bool
	// FinishTime is the time the last instruction retired.
	FinishTime clk.Tick

	// Loads/Stores count issued memory operations.
	Loads, Stores uint64
}

// horizon bounds how far ahead of simulation time the dispatch frontier may
// run before the core yields to the event queue (keeps the queue small for
// compute-heavy phases).
const horizon = clk.Tick(4000) // 1µs

// New creates a core reading from strm and accessing memory through port.
func New(id int, cfg Config, strm Stream, port MemPort, q *event.Queue) *Core {
	return &Core{ID: id, cfg: cfg, strm: strm, port: port, q: q}
}

// Start begins execution at the current simulation time.
func (c *Core) Start() {
	c.q.At(c.q.Now(), func(now clk.Tick) { c.advance(now) })
}

// Retired returns the number of retired instructions (== dispatched for
// this model once pending loads complete).
func (c *Core) Retired() int64 { return c.dispatched }

// retireHead pops completed loads from the front of the ROB.
func (c *Core) retireHead() {
	for len(c.pending) > 0 && c.pending[0].done {
		c.pending = c.pending[1:]
	}
}

// advance dispatches as far as the ROB window and the horizon allow.
func (c *Core) advance(now clk.Tick) {
	if c.Finished || c.running {
		return
	}
	c.running = true
	defer func() { c.running = false }()
	if c.tD < now {
		c.tD = now
	}
	for {
		c.retireHead()
		if c.dispatched >= c.cfg.Instructions {
			if len(c.pending) == 0 {
				c.Finished = true
				c.FinishTime = clk.Max(c.tD, now)
			}
			// Otherwise wait for the remaining loads to complete.
			return
		}
		if !c.haveRec {
			rec, ok := c.strm.Next()
			if !ok {
				// Stream exhausted: treat as finished at the frontier.
				if len(c.pending) == 0 {
					c.Finished = true
					c.FinishTime = clk.Max(c.tD, now)
				}
				return
			}
			c.rec, c.haveRec = rec, true
		}
		// ROB window: the record's memory access would be instruction
		// dispatched+gap+1; it must be within ROB of the oldest pending.
		if len(c.pending) > 0 {
			memIdx := c.dispatched + int64(c.rec.Gap) + 1
			if memIdx-c.pending[0].idx >= int64(c.cfg.ROB) {
				c.blocked = true
				return // resumed by the head load's completion
			}
		}
		// A dependent load cannot issue until its producer returns.
		if c.rec.DependsPrev && c.lastLoad != nil && !c.lastLoad.done {
			c.blocked = true
			return // resumed by the producer's completion
		}
		c.blocked = false
		// Dispatch the gap and the memory instruction at Width per cycle.
		n := c.rec.Gap + 1 + c.carry
		c.tD += clk.Tick(n / c.cfg.Width)
		c.carry = n % c.cfg.Width
		c.dispatched += int64(c.rec.Gap)

		// Dispatch the memory access.
		c.dispatched++
		c.haveRec = false
		line, write := c.rec.Line, c.rec.Write
		issueAt := clk.Max(c.tD, now)
		if write {
			c.Stores++
			c.q.At(issueAt, func(clk.Tick) { c.port.Access(line, true, nil) })
		} else {
			c.Loads++
			p := &pendingLoad{idx: c.dispatched}
			c.pending = append(c.pending, p)
			c.lastLoad = p
			c.q.At(issueAt, func(clk.Tick) {
				c.port.Access(line, false, func(done clk.Tick) { c.complete(p, done) })
			})
		}
		// Yield if the frontier has run far ahead; the queue will deliver
		// completions and we resume from them, or from this timer.
		if c.tD > now+horizon {
			c.q.At(c.tD, func(t clk.Tick) { c.advance(t) })
			return
		}
	}
}

// complete marks a load done and resumes the core if the ROB head cleared,
// a dependent load was waiting on this producer, or the core was done
// dispatching and waiting on stragglers.
func (c *Core) complete(p *pendingLoad, now clk.Tick) {
	p.done = true
	switch {
	case len(c.pending) > 0 && c.pending[0] == p:
		c.advance(now)
	case c.lastLoad == p && c.blocked:
		c.advance(now)
	case c.dispatched >= c.cfg.Instructions:
		c.advance(now)
	}
}

// IPC returns retired instructions per core cycle (ticks are cycles).
func (c *Core) IPC() float64 {
	if c.FinishTime == 0 {
		return 0
	}
	return float64(c.dispatched) / float64(c.FinishTime)
}
