package cpu

import (
	"testing"

	"autorfm/internal/clk"
	"autorfm/internal/event"
)

// fixedPort completes every load after a fixed latency.
type fixedPort struct {
	q           *event.Queue
	latency     clk.Tick
	inFlight    int
	maxInFlight int
	accesses    int
}

func (p *fixedPort) Access(line uint64, write bool, done func(clk.Tick)) {
	p.accesses++
	if done == nil {
		return
	}
	p.inFlight++
	if p.inFlight > p.maxInFlight {
		p.maxInFlight = p.inFlight
	}
	p.q.After(p.latency, func(now clk.Tick) {
		p.inFlight--
		done(now)
	})
}

// sliceStream replays a fixed set of records.
type sliceStream struct {
	recs []Record
	i    int
}

func (s *sliceStream) Next() (Record, bool) {
	if s.i >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// uniformStream generates an infinite run of identical records.
type uniformStream struct {
	gap  int
	next uint64
}

func (s *uniformStream) Next() (Record, bool) {
	s.next++
	return Record{Gap: s.gap, Line: s.next}, true
}

func run(q *event.Queue) {
	for q.Step() {
	}
}

func TestComputeOnlySpeed(t *testing.T) {
	// No memory accesses except a final one: 4000 instructions at 4-wide
	// should take ≈1000 cycles.
	q := &event.Queue{}
	p := &fixedPort{q: q, latency: clk.NS(1)}
	s := &sliceStream{recs: []Record{{Gap: 3999, Line: 1}}}
	c := New(0, DefaultConfig(4000), s, p, q)
	c.Start()
	run(q)
	if !c.Finished {
		t.Fatal("core did not finish")
	}
	if c.FinishTime < 999 || c.FinishTime > 1010 {
		t.Fatalf("FinishTime = %d cycles, want ≈1000", c.FinishTime)
	}
}

func TestMemoryLatencyBlocksAtROBLimit(t *testing.T) {
	// Every instruction is a load (gap 0) with 100-cycle latency. The ROB
	// holds 256 loads, so steady-state MLP is ≈256 and throughput ≈
	// 256 loads / 100 cycles.
	q := &event.Queue{}
	p := &fixedPort{q: q, latency: 100}
	s := &uniformStream{gap: 0}
	const n = 10000
	c := New(0, DefaultConfig(n), s, p, q)
	c.Start()
	run(q)
	if !c.Finished {
		t.Fatal("core did not finish")
	}
	if p.maxInFlight > 256 {
		t.Fatalf("MLP %d exceeded ROB size", p.maxInFlight)
	}
	if p.maxInFlight < 200 {
		t.Fatalf("MLP %d too small — ROB window not exploited", p.maxInFlight)
	}
	wantTime := float64(n) / 256.0 * 100.0
	got := float64(c.FinishTime)
	if got < wantTime*0.9 || got > wantTime*1.3 {
		t.Fatalf("FinishTime = %v cycles, want ≈%v", got, wantTime)
	}
}

func TestLatencySensitivity(t *testing.T) {
	// Doubling memory latency should roughly double runtime for a
	// memory-bound core.
	finish := func(lat clk.Tick) clk.Tick {
		q := &event.Queue{}
		p := &fixedPort{q: q, latency: lat}
		s := &uniformStream{gap: 10}
		c := New(0, DefaultConfig(20000), s, p, q)
		c.Start()
		run(q)
		return c.FinishTime
	}
	t1, t2 := finish(200), finish(400)
	ratio := float64(t2) / float64(t1)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("latency 2x → runtime %.2fx, want ≈2x", ratio)
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	// All stores: the core should sprint at dispatch speed regardless of
	// memory latency.
	q := &event.Queue{}
	p := &fixedPort{q: q, latency: clk.US(1)}
	s := &sliceStream{}
	for i := 0; i < 1000; i++ {
		s.recs = append(s.recs, Record{Gap: 3, Line: uint64(i), Write: true})
	}
	c := New(0, DefaultConfig(4000), s, p, q)
	c.Start()
	run(q)
	if !c.Finished {
		t.Fatal("core did not finish")
	}
	if c.FinishTime > 2000 {
		t.Fatalf("store-only run took %d cycles; stores blocked the core", c.FinishTime)
	}
	if c.Stores != 1000 {
		t.Fatalf("Stores = %d", c.Stores)
	}
}

func TestStreamExhaustionFinishes(t *testing.T) {
	q := &event.Queue{}
	p := &fixedPort{q: q, latency: 10}
	s := &sliceStream{recs: []Record{{Gap: 10, Line: 5}}}
	c := New(0, DefaultConfig(1<<40), s, p, q) // target far beyond the trace
	c.Start()
	run(q)
	if !c.Finished {
		t.Fatal("core did not finish on stream exhaustion")
	}
	if c.Retired() != 11 {
		t.Fatalf("Retired = %d, want 11", c.Retired())
	}
}

func TestIPC(t *testing.T) {
	q := &event.Queue{}
	p := &fixedPort{q: q, latency: 10}
	s := &uniformStream{gap: 100}
	c := New(0, DefaultConfig(10000), s, p, q)
	c.Start()
	run(q)
	if ipc := c.IPC(); ipc <= 0 || ipc > 4 {
		t.Fatalf("IPC = %v, want (0,4]", ipc)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() clk.Tick {
		q := &event.Queue{}
		p := &fixedPort{q: q, latency: 37}
		s := &uniformStream{gap: 7}
		c := New(0, DefaultConfig(5000), s, p, q)
		c.Start()
		run(q)
		return c.FinishTime
	}
	if runOnce() != runOnce() {
		t.Fatal("core model is not deterministic")
	}
}

// TestDependentLoadsSerialise: with DependsPrev on every load, MLP collapses
// to 1 and runtime scales with the full chain of latencies.
func TestDependentLoadsSerialise(t *testing.T) {
	run := func(dep bool) (clk.Tick, int) {
		q := &event.Queue{}
		p := &fixedPort{q: q, latency: 100}
		s := &sliceStream{}
		for i := 0; i < 500; i++ {
			s.recs = append(s.recs, Record{Gap: 0, Line: uint64(i), DependsPrev: dep})
		}
		c := New(0, DefaultConfig(500), s, p, q)
		c.Start()
		for q.Step() {
		}
		return c.FinishTime, p.maxInFlight
	}
	tPar, mlpPar := run(false)
	tSer, mlpSer := run(true)
	if mlpSer != 1 {
		t.Fatalf("dependent chain reached MLP %d, want 1", mlpSer)
	}
	if mlpPar < 100 {
		t.Fatalf("independent stream MLP %d, want ROB-limited", mlpPar)
	}
	if float64(tSer) < 10*float64(tPar) {
		t.Fatalf("serial chain (%v) not much slower than parallel (%v)", tSer, tPar)
	}
	// A serial chain of 500 loads at 100 cycles each ≈ 50000 cycles.
	if tSer < 49_000 || tSer > 60_000 {
		t.Fatalf("serial chain time %v, want ≈50000 cycles", tSer)
	}
}
