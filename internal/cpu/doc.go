// Package cpu models the out-of-order cores of the baseline system
// (Table IV: 8 cores, 4GHz, 4-wide, 256-entry ROB) at the level of detail
// that matters for memory-system studies: dispatch bandwidth, the ROB
// window limiting memory-level parallelism, and in-order retirement that
// blocks on the oldest incomplete load.
//
// The model is trace-driven and event-driven. A core consumes a stream of
// records, each "gap" non-memory instructions followed by one memory
// access. Non-memory instructions dispatch at 4 per cycle and retire
// immediately; loads occupy the ROB until their data returns (from the LLC
// or DRAM); stores drain through a store buffer and never block. The core
// stalls when the instruction it wants to dispatch is more than ROB-size
// instructions ahead of the oldest incomplete load — the classic
// ROB-window MLP limit.
//
// The core's event traffic is allocation-free at steady state: every
// in-flight memory operation is a pooled memOp scheduled directly as an
// event.Handler with a completion callback pre-bound at pool-insertion
// time, the outstanding-load window is a ring buffer sized to the ROB, and
// the dispatch-resume timer is bound once per core.
package cpu
