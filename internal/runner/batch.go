package runner

import (
	"context"
	"errors"
	"strconv"
	"time"

	"autorfm/internal/sim"
)

// defaultBatchFlush is how long a partially filled batch group waits for
// more same-config seeds before running below its target width. Sweeps
// submit a config family's seeds back-to-back (RunAll spawns every job
// up-front), so in practice groups fill within microseconds and the timer
// only fires for a family's tail remainder.
const defaultBatchFlush = 2 * time.Millisecond

// batchGroup collects cache-missed jobs of one config family (identical
// Key() up to Seed, same Shards and Batch) until it reaches the family's
// batch width or its creator's flush timer fires. Exactly one goroutine
// executes a group: the arrival that filled it, or — for a partial group —
// its creator after the flush delay. The taken flag (guarded by Pool.bmu)
// makes the handoff race-free.
type batchGroup struct {
	width   int
	cfgs    []sim.Config
	keys    []string
	entries []*entry
	full    chan struct{} // closed when the group reaches width
	taken   bool          // an executor owns it; no longer in Pool.groups
}

// batchGroupKey is the grouping identity for lane batching: the job key
// with the seed zeroed, plus the shard and batch widths. Shards and Batch
// are excluded from Key() (they never change results), so they are appended
// here explicitly — a group runs as one machine configuration, and mixing
// widths would silently run some jobs at another job's width.
func batchGroupKey(cfg sim.Config) string {
	c := cfg
	c.Seed = 0
	return c.Key() + "|#shards=" + strconv.Itoa(cfg.Shards) + "|#batch=" + strconv.Itoa(cfg.Batch)
}

// batchEligible reports whether a cache-missed job may join a lane-batched
// group. Per-job instrumentation and per-job timeouts are incompatible with
// sharing one machine run across jobs (a telemetry probe is per-run state;
// a timeout would cut down every lane in the group), so pools using either
// fall back to serial per-seed execution.
func (p *Pool) batchEligible(cfg sim.Config) bool {
	return cfg.Batch > 1 && p.Instrument == nil && p.JobTimeout == 0
}

// runBatched executes one cache-missed job through a batch group: the job
// joins (or creates) its family's pending group, and either this goroutine
// ends up executing the whole group or another lane's does. Either way e is
// filled and e.ready closed before this returns. Waiting respects ctx like
// the cache-coalescing path: a cancelled waiter returns early while the
// group's executor still completes its lane.
func (p *Pool) runBatched(ctx context.Context, cfg sim.Config, key string, e *entry) (sim.Result, error) {
	p.bmu.Lock()
	if p.groups == nil {
		p.groups = make(map[string]*batchGroup)
	}
	gk := batchGroupKey(cfg)
	g := p.groups[gk]
	creator := false
	if g == nil {
		g = &batchGroup{width: cfg.Batch, full: make(chan struct{})}
		p.groups[gk] = g
		creator = true
	}
	g.cfgs = append(g.cfgs, cfg)
	g.keys = append(g.keys, key)
	g.entries = append(g.entries, e)
	filled := len(g.entries) >= g.width
	if filled {
		g.taken = true
		delete(p.groups, gk)
		close(g.full)
	}
	p.bmu.Unlock()

	if filled {
		// This arrival completed the group: execute it (the creator's
		// flush select sees full closed and downgrades to waiting).
		p.executeGroup(ctx, g)
	} else if creator {
		// The creator arms the flush: if the group never fills, it claims
		// whatever collected after the delay and runs the partial group.
		// On cancellation it claims immediately rather than bailing — an
		// orphaned group would leave its entries unfilled and wedge every
		// future submission of the same keys.
		flush := p.BatchFlush
		if flush <= 0 {
			flush = defaultBatchFlush
		}
		timer := time.NewTimer(flush)
		select {
		case <-g.full:
			timer.Stop()
		case <-timer.C:
			p.claimAndExecute(ctx, gk, g)
		case <-ctx.Done():
			timer.Stop()
			p.claimAndExecute(ctx, gk, g)
		}
	}

	select {
	case <-e.ready:
		return e.res, e.err
	case <-ctx.Done():
		return sim.Result{}, ctx.Err()
	}
}

// claimAndExecute runs g unless another goroutine already took it.
func (p *Pool) claimAndExecute(ctx context.Context, gk string, g *batchGroup) {
	p.bmu.Lock()
	claimed := !g.taken
	if claimed {
		g.taken = true
		delete(p.groups, gk)
		close(g.full)
	}
	p.bmu.Unlock()
	if claimed {
		p.executeGroup(ctx, g)
	}
}

// executeGroup runs every lane of g as one machine batch under a single
// worker slot, then distributes per-lane results to the waiting jobs:
// successful lanes are checkpointed and counted exactly like serial jobs,
// panicking lanes surface as *PanicError with their own lane key, and
// cancelled lanes are evicted from the cache so a resumed sweep re-runs
// them. Tail auto-widening is deliberately not applied: a batch already
// occupies its worker with B jobs' worth of work.
func (p *Pool) executeGroup(ctx context.Context, g *batchGroup) {
	seeds := make([]uint64, len(g.cfgs))
	for i, c := range g.cfgs {
		seeds[i] = c.Seed
	}
	var results []sim.Result
	var errs []error
	var qStart, rStart, rEnd time.Time
	if p.OnJobPhase != nil {
		qStart = p.clock()
	}
	select {
	case p.sem <- struct{}{}:
		p.markSimStarted()
		if p.OnJobPhase != nil {
			rStart = p.clock()
		}
		m := p.getMachine()
		results, errs = m.RunBatch(ctx, g.cfgs[0], seeds)
		p.putMachine(m)
		if p.OnJobPhase != nil {
			rEnd = p.clock()
		}
		<-p.sem
	case <-ctx.Done():
		results = make([]sim.Result, len(seeds))
		errs = make([]error, len(seeds))
		for i := range errs {
			errs[i] = ctx.Err()
		}
	}

	if p.OnJobPhase != nil && !rStart.IsZero() {
		// Every lane shares the group's single machine run; report the
		// group window under each lane's own key.
		for _, k := range g.keys {
			p.OnJobPhase(k, PhaseQueue, qStart, rStart)
			p.OnJobPhase(k, PhaseRun, rStart, rEnd)
		}
	}

	for i, e := range g.entries {
		err := errs[i]
		var lp *sim.LanePanic
		if errors.As(err, &lp) {
			err = &PanicError{Key: g.keys[i], Value: lp.Value, Stack: lp.Stack}
		}
		if err == nil {
			res := results[i]
			p.pmu.Lock()
			p.events += res.Events
			p.pmu.Unlock()
			p.checkpoint(g.keys[i], res)
		} else if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// Caller cancellation is not a property of the job; evict so a
			// resumed sweep re-runs it (mirrors Pool.Run's serial path).
			p.mu.Lock()
			delete(p.cache, g.keys[i])
			p.mu.Unlock()
		}
		e.res, e.err = sim.Result{}, err
		if err == nil {
			e.res = results[i]
		}
		close(e.ready)
	}
}

// AutoWiden configures tail widening: when a sweep's pending job count
// drops below the worker count, the pool raises each remaining job's shard
// width (sim.Config.Shards) so otherwise-idle cores contribute to the jobs
// still running. Widening never changes results — sharded output is
// byte-identical to serial and Shards is excluded from Key() — so it
// composes with the result cache and checkpointing.
type AutoWiden struct {
	// MaxShards caps the widened shard width; <= 1 disables widening.
	MaxShards int
	// Debounce is how long the tail condition (pending < workers) must
	// hold before widening kicks in, so a sweep that momentarily dips —
	// e.g. between RunAll waves — does not flip widths back and forth.
	// Zero widens immediately.
	Debounce time.Duration
}

// widenWidth returns the shard width to widen the next job to, or 0 to
// leave the job as submitted. Jobs that already request sharding or lane
// batching are never widened.
func (p *Pool) widenWidth(cfg sim.Config) int {
	if p.AutoWiden.MaxShards <= 1 || cfg.Shards > 1 || cfg.Batch > 1 {
		return 0
	}
	p.pmu.Lock()
	defer p.pmu.Unlock()
	pending := p.submitted - p.done
	if pending >= cap(p.sem) {
		p.tailSince = time.Time{}
		return 0
	}
	now := p.clock()
	if p.tailSince.IsZero() {
		p.tailSince = now
	}
	if now.Sub(p.tailSince) < p.AutoWiden.Debounce {
		return 0
	}
	if pending < 1 {
		pending = 1
	}
	width := cap(p.sem) / pending
	if width > p.AutoWiden.MaxShards {
		width = p.AutoWiden.MaxShards
	}
	if width <= 1 {
		return 0
	}
	return width
}

// clock returns the pool's time source (the now seam lets the widening
// debounce be unit-tested against a fake clock).
func (p *Pool) clock() time.Time {
	if p.now != nil {
		return p.now()
	}
	return time.Now()
}
