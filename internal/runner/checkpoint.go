package runner

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"

	"autorfm/internal/sim"
)

// ckptFailures is the process-wide count of checkpoint lines that failed to
// write (disk full, closed file, ...), across every pool. It is exported as
// the expvar "autorfm.checkpoint_write_failures" so a sweep's introspection
// endpoint (-http) shows silently degraded checkpointing before a resume
// discovers the hole. Per-pool counts are available from
// Pool.CheckpointFailures.
var ckptFailures = expvar.NewInt("autorfm.checkpoint_write_failures")

// checkpointRecord is one checkpoint line: a completed simulation keyed by
// its config's memoization key. The key is stored redundantly — it is
// recomputable from the config inside the result — so LoadCheckpoint can
// verify each line against the current Key() schema and silently skip
// records written by an incompatible binary instead of poisoning the cache.
type checkpointRecord struct {
	Key    string     `json:"key"`
	Result sim.Result `json:"result"`
}

// WriteCheckpoints directs the pool to append every newly simulated result
// to w as one JSON object per line, as jobs complete. Cache hits and failed
// jobs are not written (hits are already on file or in memory; errors are
// cheap to reproduce and must re-run on resume). Writes are serialized and
// best-effort: a failing sink degrades checkpointing, never the sweep —
// but the degradation is not silent: the first failure warns on stderr,
// every failure increments Pool.CheckpointFailures and the process-wide
// expvar "autorfm.checkpoint_write_failures".
// Pass nil to disable. Safe to call while jobs are running.
func (p *Pool) WriteCheckpoints(w io.Writer) {
	p.cmu.Lock()
	p.cw = w
	p.cmu.Unlock()
}

// CheckpointFailures returns how many checkpoint lines this pool failed to
// write. A non-zero count means a later -resume will re-simulate the lost
// jobs — correct, just slower.
func (p *Pool) CheckpointFailures() uint64 {
	p.cmu.Lock()
	defer p.cmu.Unlock()
	return p.cfails
}

func (p *Pool) checkpoint(key string, res sim.Result) {
	if key == "" {
		return // uncacheable config: cannot be resumed by key
	}
	p.cmu.Lock()
	defer p.cmu.Unlock()
	if p.cw == nil {
		return
	}
	// Encode eagerly so a line is either fully formed or not written; the
	// encoder appends the trailing newline that delimits records.
	if err := json.NewEncoder(p.cw).Encode(checkpointRecord{Key: key, Result: res}); err != nil {
		p.cfails++
		ckptFailures.Add(1)
		p.cwarn.Do(func() {
			fmt.Fprintf(os.Stderr,
				"runner: checkpoint write failed (sweep continues; further failures are counted, not logged): %v\n", err)
		})
	}
}

// LoadCheckpoint preloads the pool's cache from a JSON-lines stream
// previously produced by WriteCheckpoints, returning how many results were
// loaded. Malformed lines — typically one record truncated when the
// writing process was killed mid-write — and records whose stored key does
// not match their config's recomputed Key() are skipped, so resuming from
// a damaged or stale checkpoint recovers everything that is still valid.
// An error is returned only when reading from r itself fails.
func (p *Pool) LoadCheckpoint(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		var rec checkpointRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		if rec.Key == "" || rec.Result.Config.Key() != rec.Key {
			continue
		}
		e := &entry{ready: make(chan struct{}), res: rec.Result}
		close(e.ready)
		p.mu.Lock()
		if _, ok := p.cache[rec.Key]; !ok {
			p.cache[rec.Key] = e
			n++
		}
		p.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("runner: reading checkpoint: %w", err)
	}
	return n, nil
}
