package runner

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"autorfm/internal/dram"
	"autorfm/internal/fault"
	"autorfm/internal/sim"
)

// batchJobs returns count seeds of one config family at the given batch
// width.
func batchJobs(t *testing.T, count, batch int) []sim.Config {
	t.Helper()
	jobs := make([]sim.Config, count)
	for i := range jobs {
		jobs[i] = cfg(t, "bwaves", func(c *sim.Config) {
			c.Mode, c.TH = dram.ModeAutoRFM, 8
			c.Seed = uint64(i + 1)
			c.Batch = batch
		})
	}
	return jobs
}

// TestPoolBatchMatchesSerial pins the runner-level grouping contract: a
// sweep submitted at Batch=3 returns results byte-identical to the same
// sweep run serially, including a partial tail group (7 seeds / width 3),
// and every job was actually simulated once (no spurious cache hits).
func TestPoolBatchMatchesSerial(t *testing.T) {
	ctx := context.Background()
	jobs := batchJobs(t, 7, 3)

	serialPool := New(2)
	serialJobs := make([]sim.Config, len(jobs))
	for i, j := range jobs {
		j.Batch = 0
		serialJobs[i] = j
	}
	want, errs := serialPool.RunAll(ctx, serialJobs)
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}

	batchPool := New(2)
	got, errs := batchPool.RunAll(ctx, jobs)
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		// Result.Config reports the job as submitted, execution-mode knobs
		// included; clear Batch before comparing, exactly like the shard
		// differentials clear Shards (the knobs are json-ignored, so
		// persisted results never carry them).
		g, w := got[i], want[i]
		g.Config.Batch, w.Config.Batch = 0, 0
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("seed %d: batched result diverges from serial", i+1)
		}
	}
	if hits, misses := batchPool.CacheStats(); hits != 0 || misses != 7 {
		t.Errorf("hits=%d misses=%d, want 0/7", hits, misses)
	}
	if ev := batchPool.SimulatedEvents(); ev != serialPool.SimulatedEvents() {
		t.Errorf("batched pool counted %d events, serial %d", ev, serialPool.SimulatedEvents())
	}
}

// TestPoolBatchSharesCache: a batched sweep populates the same cache a
// serial resubmission hits — the group's lanes are memoized under their
// unchanged per-seed keys.
func TestPoolBatchSharesCache(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	jobs := batchJobs(t, 4, 2)
	if _, errs := p.RunAll(ctx, jobs); FirstError(errs) != nil {
		t.Fatal(FirstError(errs))
	}
	// Resubmit serially (Batch=0): all four must be cache hits.
	for i, j := range jobs {
		j.Batch = 0
		if _, err := p.Run(ctx, j); err != nil {
			t.Fatalf("resubmit %d: %v", i, err)
		}
	}
	if hits, misses := p.CacheStats(); hits != 4 || misses != 4 {
		t.Errorf("hits=%d misses=%d, want 4/4", hits, misses)
	}
}

// TestPoolBatchPanicIsolation: one lane's injected panic surfaces as a
// *PanicError carrying that lane's key, while sibling lanes in the same
// group complete normally.
func TestPoolBatchPanicIsolation(t *testing.T) {
	ctx := context.Background()
	p := New(1)
	jobs := batchJobs(t, 3, 3)
	doomed := cfg(t, "bwaves", func(c *sim.Config) {
		c.Mode, c.TH = dram.ModeAutoRFM, 8
		c.Seed = 2
		c.Batch = 3
		c.Fault = fault.Config{PanicAfterActs: 1}
	})
	jobs[1] = doomed

	// The faulted lane differs in Key (fault config is part of it), so it
	// groups separately; run it through the same pool to exercise the
	// LanePanic→PanicError conversion, siblings through their own group.
	res, errs := p.RunAll(ctx, jobs)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("sibling lanes failed: %v / %v", errs[0], errs[2])
	}
	if res[0].MC.Acts == 0 || res[2].MC.Acts == 0 {
		t.Fatal("sibling lanes did not complete")
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("errs[1] = %v (%T), want *PanicError", errs[1], errs[1])
	}
	if pe.Key != doomed.Key() {
		t.Errorf("PanicError.Key = %q, want %q", pe.Key, doomed.Key())
	}
}

// TestPoolBatchIneligible: instrumented pools and per-job timeouts fall
// back to serial execution (a shared machine run cannot carry per-job
// telemetry or per-job deadlines), and still produce correct results.
func TestPoolBatchIneligible(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	p.JobTimeout = time.Minute
	jobs := batchJobs(t, 2, 2)
	if _, errs := p.RunAll(ctx, jobs); FirstError(errs) != nil {
		t.Fatal(FirstError(errs))
	}
	p.bmu.Lock()
	groups := len(p.groups)
	p.bmu.Unlock()
	if groups != 0 {
		t.Fatalf("ineligible jobs left %d pending groups", groups)
	}
}

// TestPoolBatchFlushTail: a single job at Batch=8 still completes — the
// group's creator flushes the partial group after BatchFlush instead of
// waiting forever for seven more seeds.
func TestPoolBatchFlushTail(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	p.BatchFlush = time.Millisecond
	job := batchJobs(t, 1, 8)[0]
	start := time.Now()
	if _, err := p.Run(ctx, job); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("flush took %v", d)
	}
}

// TestAutoWidenTail drives the widening debounce against a fake clock: a
// pool whose pending count sits below its worker count widens jobs only
// once the condition has held for Debounce, and leaves explicitly sharded
// or batched jobs alone.
func TestAutoWidenTail(t *testing.T) {
	ctx := context.Background()
	p := New(4)
	p.AutoWiden = AutoWiden{MaxShards: 4, Debounce: time.Second}
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }

	// Observe the width each simulated job actually ran at. Instrument is
	// called before widening and disables batching, so read the width from
	// the widening decision directly instead.
	job := cfg(t, "bwaves", func(c *sim.Config) { c.Seed = 10 })

	// First tail job: starts the debounce window; not yet widened.
	if w := p.widenWidth(jobPending(p, job)); w != 0 {
		t.Fatalf("widened before debounce: %d", w)
	}
	// Clock advances past the debounce: a lone pending job on 4 workers
	// widens to the full 4 shards.
	now = now.Add(2 * time.Second)
	if w := p.widenWidth(jobPending(p, job)); w != 4 {
		t.Fatalf("width = %d, want 4", w)
	}
	// Explicit sharding and batching opt out.
	sharded := job
	sharded.Shards = 2
	if w := p.widenWidth(sharded); w != 0 {
		t.Fatalf("sharded job widened to %d", w)
	}
	batched := job
	batched.Batch = 2
	if w := p.widenWidth(batched); w != 0 {
		t.Fatalf("batched job widened to %d", w)
	}
	// A full queue (pending >= workers) resets the window.
	p.pmu.Lock()
	p.submitted += 10
	p.pmu.Unlock()
	if w := p.widenWidth(job); w != 0 {
		t.Fatalf("widened with a full queue: %d", w)
	}
	p.pmu.Lock()
	if !p.tailSince.IsZero() {
		p.pmu.Unlock()
		t.Fatal("full queue did not reset the tail window")
	}
	p.pmu.Unlock()

	// End-to-end: a widened job's result is byte-identical to serial.
	p2 := New(4)
	p2.AutoWiden = AutoWiden{MaxShards: 4}
	got, err := p2.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(1).Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	// The widened run's Result.Config records the width it actually ran
	// at; everything else must match serial byte for byte.
	got.Config.Shards, want.Config.Shards = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatal("widened result diverges from serial")
	}
}

// jobPending registers one pending job so widenWidth sees a non-empty tail
// (submitted-done drives the pending count), then returns the config.
func jobPending(p *Pool, c sim.Config) sim.Config {
	p.pmu.Lock()
	if p.submitted == p.done {
		p.submitted++
	}
	p.pmu.Unlock()
	return c
}
