package runner

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"autorfm/internal/cpu"
	"autorfm/internal/dram"
	"autorfm/internal/fault"
	"autorfm/internal/sim"
	"autorfm/internal/workload"
)

func cfg(t testing.TB, wl string, mut func(*sim.Config)) sim.Config {
	t.Helper()
	p, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.Config{Workload: p, InstructionsPerCore: 30_000, Seed: 1}
	if mut != nil {
		mut(&c)
	}
	return c
}

// TestRunAllOrderAndDeterminism: results come back in input order and are
// identical to direct serial sim.Run calls, at any worker count.
func TestRunAllOrderAndDeterminism(t *testing.T) {
	jobs := []sim.Config{
		cfg(t, "bwaves", nil),
		cfg(t, "mcf", nil),
		cfg(t, "bwaves", func(c *sim.Config) { c.Seed = 2 }),
	}
	want := make([]sim.Result, len(jobs))
	for i, j := range jobs {
		w, err := sim.Run(j)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	ctx := context.Background()
	for _, workers := range []int{1, 8} {
		got, errs := New(workers).RunAll(ctx, jobs)
		if err := FirstError(errs); err != nil {
			t.Fatal(err)
		}
		for i := range jobs {
			if got[i].Elapsed != want[i].Elapsed || got[i].MC.Acts != want[i].MC.Acts {
				t.Errorf("workers=%d job %d: got elapsed=%v acts=%d, want %v/%d",
					workers, i, got[i].Elapsed, got[i].MC.Acts, want[i].Elapsed, want[i].MC.Acts)
			}
		}
	}
}

// TestCacheDeduplicates: identical configs — including ones that only
// normalize equal — are simulated once.
func TestCacheDeduplicates(t *testing.T) {
	ctx := context.Background()
	p := New(4)
	base := cfg(t, "bwaves", nil)
	defaulted := base
	defaulted.Cores = 8 // the default; must share base's cache key
	jobs := []sim.Config{base, base, defaulted, base}
	if _, errs := p.RunAll(ctx, jobs); FirstError(errs) != nil {
		t.Fatal(FirstError(errs))
	}
	hits, misses := p.CacheStats()
	if misses != 1 || hits != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/1", hits, misses)
	}
	// A second round is fully cached.
	if _, err := p.Run(ctx, base); err != nil {
		t.Fatal(err)
	}
	if hits, misses = p.CacheStats(); misses != 1 || hits != 4 {
		t.Fatalf("after rerun: hits=%d misses=%d, want 4/1", hits, misses)
	}
}

// TestUncacheableStream: a NewStream config has no key and always runs.
func TestUncacheableStream(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	c := cfg(t, "bwaves", func(c *sim.Config) {
		c.Cores = 1
		c.NewStream = func(core int) cpu.Stream {
			return workload.NewGenerator(c.Workload, core, 7)
		}
	})
	if c.Key() != "" {
		t.Fatal("NewStream config has a cache key")
	}
	if _, errs := p.RunAll(ctx, []sim.Config{c, c}); FirstError(errs) != nil {
		t.Fatal(FirstError(errs))
	}
	if hits, misses := p.CacheStats(); hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", hits, misses)
	}
}

// TestErrorPropagates: a bad config fails its job without poisoning the
// others, and the error slice pinpoints which job failed.
func TestErrorPropagates(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	jobs := []sim.Config{
		cfg(t, "bwaves", nil),
		cfg(t, "bwaves", func(c *sim.Config) { c.Tracker = "bogus" }),
	}
	res, errs := p.RunAll(ctx, jobs)
	if errs[0] != nil {
		t.Fatalf("healthy job failed: %v", errs[0])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "bogus") {
		t.Fatalf("errs[1] = %v", errs[1])
	}
	if err := FirstError(errs); err != errs[1] {
		t.Fatalf("FirstError = %v, want errs[1]", err)
	}
	if res[0].MC.Acts == 0 {
		t.Error("healthy job did not complete")
	}
	// The failure is cached too: re-running returns the same error.
	if _, err2 := p.Run(ctx, jobs[1]); err2 == nil {
		t.Error("cached failure did not re-report its error")
	}
}

// TestPanicIsolation: a job that panics mid-simulation becomes a
// *PanicError carrying the config key and stack; sibling jobs complete.
func TestPanicIsolation(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	doomed := cfg(t, "bwaves", func(c *sim.Config) {
		c.Mode, c.TH = dram.ModeAutoRFM, 4
		c.Fault = fault.Config{PanicAfterActs: 1}
	})
	jobs := []sim.Config{cfg(t, "bwaves", nil), doomed, cfg(t, "mcf", nil)}
	res, errs := p.RunAll(ctx, jobs)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("sibling jobs failed: %v / %v", errs[0], errs[2])
	}
	if res[0].MC.Acts == 0 || res[2].MC.Acts == 0 {
		t.Fatal("sibling jobs did not complete")
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("errs[1] = %v (%T), want *PanicError", errs[1], errs[1])
	}
	if pe.Key != doomed.Key() {
		t.Errorf("PanicError.Key = %q, want %q", pe.Key, doomed.Key())
	}
	if !strings.Contains(string(pe.Stack), "OnActivation") {
		t.Error("PanicError.Stack does not reach the panic site")
	}
	if !strings.Contains(pe.Error(), "injected tracker panic") {
		t.Errorf("PanicError.Error() = %q", pe.Error())
	}
	// Deterministic panics are memoized like any failure.
	if _, err := p.Run(ctx, doomed); !errors.As(err, &pe) {
		t.Errorf("cached panic came back as %v", err)
	}
	if hits, misses := p.CacheStats(); hits != 1 || misses != 3 {
		t.Errorf("hits=%d misses=%d, want 1/3", hits, misses)
	}
}

// TestCancellation: a cancelled context stops in-flight jobs promptly,
// reports ctx.Err(), and does not poison the cache — resubmitting the
// cancelled config re-runs it to completion.
func TestCancellation(t *testing.T) {
	p := New(1)
	job := cfg(t, "bwaves", func(c *sim.Config) { c.InstructionsPerCore = 5_000_000 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, job); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The eviction means a fresh context re-runs the job for real.
	quick := cfg(t, "bwaves", nil)
	if _, err := p.Run(context.Background(), quick); err != nil {
		t.Fatal(err)
	}
}

// TestJobTimeout: a job exceeding JobTimeout fails with a *TimeoutError
// that still unwraps to DeadlineExceeded, carries the job's key and the
// limit that expired, and renders as "timeout after X" — while an untimed
// sibling completes.
func TestJobTimeout(t *testing.T) {
	p := New(2)
	p.JobTimeout = time.Millisecond
	slow := cfg(t, "bwaves", func(c *sim.Config) { c.InstructionsPerCore = 50_000_000 })
	_, err := p.Run(context.Background(), slow)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded via unwrap", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v (%T), want *TimeoutError", err, err)
	}
	if te.Key != slow.Key() || te.Limit != time.Millisecond {
		t.Errorf("TimeoutError = %+v, want key %q limit 1ms", te, slow.Key())
	}
	if got := te.Error(); got != "timeout after 1ms" {
		t.Errorf("Error() = %q, want %q", got, "timeout after 1ms")
	}
	p2 := New(2) // fresh pool without the timeout
	if _, err := p2.Run(context.Background(), cfg(t, "bwaves", nil)); err != nil {
		t.Fatal(err)
	}
}

// TestCallerDeadlineIsNotJobTimeout: when the caller's own context expires,
// the error stays a plain DeadlineExceeded (and is evicted, like any
// cancellation) rather than being misreported as the job's timeout.
func TestCallerDeadlineIsNotJobTimeout(t *testing.T) {
	p := New(1)
	p.JobTimeout = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	slow := cfg(t, "bwaves", func(c *sim.Config) { c.InstructionsPerCore = 50_000_000 })
	_, err := p.Run(ctx, slow)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		t.Fatalf("caller deadline surfaced as job *TimeoutError: %v", err)
	}
}

// TestProgressAccounting: every submitted job produces exactly one
// progress callback, with monotonically complete final state.
func TestProgressAccounting(t *testing.T) {
	ctx := context.Background()
	p := New(4)
	var mu sync.Mutex
	var last Progress
	calls := 0
	p.OnProgress = func(pr Progress) {
		mu.Lock()
		last = pr
		calls++
		mu.Unlock()
	}
	jobs := []sim.Config{
		cfg(t, "bwaves", nil),
		cfg(t, "bwaves", nil), // cache hit
		cfg(t, "mcf", nil),
	}
	if _, errs := p.RunAll(ctx, jobs); FirstError(errs) != nil {
		t.Fatal(FirstError(errs))
	}
	if calls != 3 || last.Done != 3 || last.Total != 3 || last.CacheHits != 1 {
		t.Fatalf("calls=%d last=%+v", calls, last)
	}
}

// TestEstimateETA: the estimator must survive the edge cases that used to
// produce divisions by zero and negative ETAs.
func TestEstimateETA(t *testing.T) {
	cases := []struct {
		name                string
		done, hits, total   int
		elapsed             time.Duration
		want                time.Duration
		wantZero, wantAbove bool
	}{
		{name: "nothing done", done: 0, hits: 0, total: 10, elapsed: 0, wantZero: true},
		{name: "all cache hits", done: 5, hits: 5, total: 10, elapsed: time.Millisecond, wantZero: true},
		{name: "nothing pending", done: 10, hits: 2, total: 10, elapsed: time.Second, wantZero: true},
		{name: "clock not advanced", done: 3, hits: 0, total: 10, elapsed: 0, wantZero: true},
		{name: "half done", done: 5, hits: 0, total: 10, elapsed: 10 * time.Second, want: 10 * time.Second},
		{name: "hits excluded", done: 6, hits: 4, total: 10, elapsed: 10 * time.Second, want: 20 * time.Second},
		{name: "overshoot clamped", done: 11, hits: 0, total: 10, elapsed: time.Second, wantZero: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := estimateETA(tc.done, tc.hits, tc.total, tc.elapsed)
			if got < 0 {
				t.Fatalf("negative ETA %v", got)
			}
			if tc.wantZero && got != 0 {
				t.Fatalf("got %v, want 0", got)
			}
			if !tc.wantZero && got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

// TestCheckpointRoundTrip: results checkpointed by one pool preload
// another pool's cache and are served as byte-for-byte identical results
// without re-simulation.
func TestCheckpointRoundTrip(t *testing.T) {
	ctx := context.Background()
	jobs := []sim.Config{
		cfg(t, "bwaves", nil),
		cfg(t, "mcf", nil),
	}

	var ckpt bytes.Buffer
	p1 := New(2)
	p1.WriteCheckpoints(&ckpt)
	want, errs := p1.RunAll(ctx, jobs)
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if ckpt.Len() == 0 {
		t.Fatal("no checkpoint records written")
	}

	p2 := New(2)
	n, err := p2.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(jobs) {
		t.Fatalf("loaded %d records, want %d", n, len(jobs))
	}
	got, errs := p2.RunAll(ctx, jobs)
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %d: resumed result differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if hits, misses := p2.CacheStats(); hits != len(jobs) || misses != 0 {
		t.Fatalf("resumed pool simulated: hits=%d misses=%d", hits, misses)
	}
}

// TestCheckpointSkipsDamage: truncated trailing lines (a kill mid-write)
// and records with stale keys are skipped; intact records still load.
func TestCheckpointSkipsDamage(t *testing.T) {
	ctx := context.Background()
	job := cfg(t, "bwaves", nil)
	var ckpt bytes.Buffer
	p1 := New(1)
	p1.WriteCheckpoints(&ckpt)
	if _, err := p1.Run(ctx, job); err != nil {
		t.Fatal(err)
	}

	damaged := bytes.Buffer{}
	damaged.WriteString("{\"key\":\"stale-key\",\"result\":{}}\n") // key mismatch
	damaged.Write(ckpt.Bytes())                                    // intact record
	damaged.WriteString("{\"key\":\"trunc")                        // torn final write

	p2 := New(1)
	n, err := p2.LoadCheckpoint(&damaged)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d records, want 1", n)
	}
	if _, err := p2.Run(ctx, job); err != nil {
		t.Fatal(err)
	}
	if hits, _ := p2.CacheStats(); hits != 1 {
		t.Fatal("intact record was not served from cache")
	}
}

// failingWriter fails every write after the first n bytes-worth of calls.
type failingWriter struct {
	okWrites int
	writes   int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.okWrites {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestCheckpointWriteFailureCounted: a failing checkpoint sink no longer
// loses errors silently — every failed line increments the pool's counter
// (and the process-wide expvar) while the sweep itself keeps succeeding.
func TestCheckpointWriteFailureCounted(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	w := &failingWriter{okWrites: 1}
	p.WriteCheckpoints(w)
	jobs := []sim.Config{
		cfg(t, "bwaves", nil),
		cfg(t, "mcf", nil),
		cfg(t, "pagerank", nil),
	}
	before := ckptFailures.Value()
	if _, errs := p.RunAll(ctx, jobs); FirstError(errs) != nil {
		t.Fatalf("sweep failed on a bad checkpoint sink: %v", FirstError(errs))
	}
	if got := p.CheckpointFailures(); got != 2 {
		t.Fatalf("CheckpointFailures = %d, want 2 (one write succeeded)", got)
	}
	if delta := ckptFailures.Value() - before; delta != 2 {
		t.Fatalf("expvar autorfm.checkpoint_write_failures grew by %d, want 2", delta)
	}
	// A healthy pool reports zero.
	p2 := New(1)
	p2.WriteCheckpoints(&bytes.Buffer{})
	if _, err := p2.Run(ctx, cfg(t, "bwaves", nil)); err != nil {
		t.Fatal(err)
	}
	if got := p2.CheckpointFailures(); got != 0 {
		t.Fatalf("healthy pool CheckpointFailures = %d, want 0", got)
	}
}

// TestInstrumentOnlySimulatedJobs: the Instrument hook fires once per
// actual simulation — cache hits and in-flight duplicates re-deliver the
// memoized Result without re-instrumenting, and the hook's config mutation
// stays private to the simulated job (the caller's slice is untouched).
func TestInstrumentOnlySimulatedJobs(t *testing.T) {
	ctx := context.Background()
	p := New(4)
	var mu sync.Mutex
	var keys []string
	p.Instrument = func(c *sim.Config, key string) {
		mu.Lock()
		keys = append(keys, key)
		mu.Unlock()
		c.Telemetry = nil // mutation must not leak to the submitted configs
	}
	base := cfg(t, "bwaves", nil)
	jobs := []sim.Config{base, base, cfg(t, "mcf", nil), base}
	if _, errs := p.RunAll(ctx, jobs); FirstError(errs) != nil {
		t.Fatal(FirstError(errs))
	}
	if len(keys) != 2 {
		t.Fatalf("Instrument fired %d times (%v), want 2 (one per unique config)", len(keys), keys)
	}
	if keys[0] == "" || keys[1] == "" || keys[0] == keys[1] {
		t.Fatalf("bad keys: %v", keys)
	}
	// A second submission of the cached config must not re-instrument.
	if _, err := p.Run(ctx, base); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("cache hit re-ran Instrument: %v", keys)
	}
}

// TestInstrumentUncacheable: keyless (NewStream) jobs are always simulated,
// so each submission instruments with an empty key.
func TestInstrumentUncacheable(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	var mu sync.Mutex
	empties := 0
	p.Instrument = func(c *sim.Config, key string) {
		mu.Lock()
		if key == "" {
			empties++
		}
		mu.Unlock()
	}
	c := cfg(t, "bwaves", func(c *sim.Config) {
		c.Cores = 1
		c.NewStream = func(core int) cpu.Stream {
			return workload.NewGenerator(c.Workload, core, 7)
		}
	})
	if _, errs := p.RunAll(ctx, []sim.Config{c, c}); FirstError(errs) != nil {
		t.Fatal(FirstError(errs))
	}
	if empties != 2 {
		t.Fatalf("keyless jobs instrumented %d times, want 2", empties)
	}
}

// TestProgressFailedAndEvents: Progress reports failed jobs and cumulative
// dispatched events alongside the done/cached counts.
func TestProgressFailedAndEvents(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	var mu sync.Mutex
	var last Progress
	p.OnProgress = func(pr Progress) {
		mu.Lock()
		last = pr
		mu.Unlock()
	}
	bad := cfg(t, "bwaves", func(c *sim.Config) { c.Cores = -1 })
	jobs := []sim.Config{cfg(t, "bwaves", nil), bad, cfg(t, "mcf", nil)}
	results, errs := p.RunAll(ctx, jobs)
	if FirstError(errs) == nil {
		t.Fatal("bad config did not fail")
	}
	if last.Done != 3 || last.Failed != 1 {
		t.Fatalf("progress %+v, want Done=3 Failed=1", last)
	}
	wantEvents := results[0].Events + results[2].Events
	if last.Events != wantEvents {
		t.Fatalf("progress events %d, want %d (sum of successful jobs)", last.Events, wantEvents)
	}
}

// TestSimWindowExcludesPreload is the regression test for the post-resume
// rate skew: a sweep that opens with a preloaded (checkpoint/store-hit)
// prefix must not count the preload's wall time — or its jobs — in the
// simulation window that throughput and ETA are computed over.
func TestSimWindowExcludesPreload(t *testing.T) {
	p := New(1)
	now := time.Unix(1_000, 0)
	p.now = func() time.Time { return now }
	var last Progress
	p.OnProgress = func(pr Progress) { last = pr }

	// A resumed sweep: 10 jobs submitted, the first 5 answered from the
	// preloaded cache while the clock stands still.
	for i := 0; i < 10; i++ {
		p.jobSubmitted()
	}
	for i := 0; i < 5; i++ {
		p.jobDone(true, false)
	}
	if last.SimElapsed != 0 || last.ETA != 0 {
		t.Fatalf("all-hits prefix: SimElapsed=%v ETA=%v, want 0/0", last.SimElapsed, last.ETA)
	}

	// 100s pass before the first real simulation gets going (preload I/O,
	// queue wait), then one job simulates for 10s.
	now = now.Add(100 * time.Second)
	p.markSimStarted()
	now = now.Add(10 * time.Second)
	p.jobDone(false, false)

	if last.Elapsed != 110*time.Second {
		t.Fatalf("Elapsed = %v, want 110s", last.Elapsed)
	}
	if last.SimElapsed != 10*time.Second {
		t.Fatalf("SimElapsed = %v, want 10s (preload window excluded)", last.SimElapsed)
	}
	// ETA over the sim window: 10s for 1 simulated job, 4 pending → 40s.
	// The old pool-lifetime window would have said 440s.
	if last.ETA != 40*time.Second {
		t.Fatalf("ETA = %v, want 40s", last.ETA)
	}
}

// TestSimWindowEndToEnd: the same invariant through the public API — a
// pool preloaded via LoadCheckpoint reports SimElapsed only once a job
// actually simulates, and cache hits never open the window.
func TestSimWindowEndToEnd(t *testing.T) {
	ctx := context.Background()
	job := cfg(t, "bwaves", nil)

	scratch := New(1)
	var ckpt bytes.Buffer
	scratch.WriteCheckpoints(&ckpt)
	if _, err := scratch.Run(ctx, job); err != nil {
		t.Fatal(err)
	}

	p := New(1)
	if _, err := p.LoadCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	var last Progress
	p.OnProgress = func(pr Progress) { last = pr }
	if _, err := p.Run(ctx, job); err != nil {
		t.Fatal(err)
	}
	if last.CacheHits != 1 {
		t.Fatalf("preloaded job not a cache hit: %+v", last)
	}
	if last.SimElapsed != 0 {
		t.Fatalf("cache hit opened the sim window: SimElapsed=%v", last.SimElapsed)
	}
	fresh := cfg(t, "bwaves", func(c *sim.Config) { c.Seed = 99 })
	if _, err := p.Run(ctx, fresh); err != nil {
		t.Fatal(err)
	}
	if last.SimElapsed <= 0 {
		t.Fatalf("simulated job did not open the sim window: %+v", last)
	}
	if last.SimElapsed > last.Elapsed {
		t.Fatalf("SimElapsed %v exceeds Elapsed %v", last.SimElapsed, last.Elapsed)
	}
}

// TestOnJobPhase: simulated jobs report queue and run phases with sane
// bounds, cache hits report nothing, and batched lanes each report their
// group's shared window under their own key.
func TestOnJobPhase(t *testing.T) {
	ctx := context.Background()
	p := New(2)
	var mu sync.Mutex
	phases := map[string][]string{}
	p.OnJobPhase = func(key, phase string, start, end time.Time) {
		if end.Before(start) {
			t.Errorf("phase %s of %s ends before it starts", phase, key)
		}
		mu.Lock()
		phases[key] = append(phases[key], phase)
		mu.Unlock()
	}
	job := cfg(t, "bwaves", nil)
	if _, err := p.Run(ctx, job); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(ctx, job); err != nil { // cache hit
		t.Fatal(err)
	}
	key := job.Key()
	mu.Lock()
	got := phases[key]
	mu.Unlock()
	if len(got) != 2 || got[0] != PhaseQueue || got[1] != PhaseRun {
		t.Fatalf("phases for simulated job = %v, want [queue run] exactly once", got)
	}

	// Batched lanes: every lane key reports the group's phases.
	batched := []sim.Config{
		cfg(t, "mcf", func(c *sim.Config) { c.Batch = 2; c.Seed = 1 }),
		cfg(t, "mcf", func(c *sim.Config) { c.Batch = 2; c.Seed = 2 }),
	}
	if _, errs := p.RunAll(ctx, batched); FirstError(errs) != nil {
		t.Fatal(FirstError(errs))
	}
	for _, c := range batched {
		mu.Lock()
		got := phases[c.Key()]
		mu.Unlock()
		if len(got) != 2 || got[0] != PhaseQueue || got[1] != PhaseRun {
			t.Fatalf("phases for lane %s = %v, want [queue run]", c.Key(), got)
		}
	}
}
