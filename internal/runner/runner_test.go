package runner

import (
	"strings"
	"sync"
	"testing"

	"autorfm/internal/cpu"
	"autorfm/internal/sim"
	"autorfm/internal/workload"
)

func cfg(t testing.TB, wl string, mut func(*sim.Config)) sim.Config {
	t.Helper()
	p, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.Config{Workload: p, InstructionsPerCore: 30_000, Seed: 1}
	if mut != nil {
		mut(&c)
	}
	return c
}

// TestRunAllOrderAndDeterminism: results come back in input order and are
// identical to direct serial sim.Run calls, at any worker count.
func TestRunAllOrderAndDeterminism(t *testing.T) {
	jobs := []sim.Config{
		cfg(t, "bwaves", nil),
		cfg(t, "mcf", nil),
		cfg(t, "bwaves", func(c *sim.Config) { c.Seed = 2 }),
	}
	want := make([]sim.Result, len(jobs))
	for i, j := range jobs {
		w, err := sim.Run(j)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	for _, workers := range []int{1, 8} {
		got, err := New(workers).RunAll(jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range jobs {
			if got[i].Elapsed != want[i].Elapsed || got[i].MC.Acts != want[i].MC.Acts {
				t.Errorf("workers=%d job %d: got elapsed=%v acts=%d, want %v/%d",
					workers, i, got[i].Elapsed, got[i].MC.Acts, want[i].Elapsed, want[i].MC.Acts)
			}
		}
	}
}

// TestCacheDeduplicates: identical configs — including ones that only
// normalize equal — are simulated once.
func TestCacheDeduplicates(t *testing.T) {
	p := New(4)
	base := cfg(t, "bwaves", nil)
	defaulted := base
	defaulted.Cores = 8 // the default; must share base's cache key
	jobs := []sim.Config{base, base, defaulted, base}
	if _, err := p.RunAll(jobs); err != nil {
		t.Fatal(err)
	}
	hits, misses := p.CacheStats()
	if misses != 1 || hits != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/1", hits, misses)
	}
	// A second round is fully cached.
	if _, err := p.Run(base); err != nil {
		t.Fatal(err)
	}
	if hits, misses = p.CacheStats(); misses != 1 || hits != 4 {
		t.Fatalf("after rerun: hits=%d misses=%d, want 4/1", hits, misses)
	}
}

// TestUncacheableStream: a NewStream config has no key and always runs.
func TestUncacheableStream(t *testing.T) {
	p := New(2)
	c := cfg(t, "bwaves", func(c *sim.Config) {
		c.Cores = 1
		c.NewStream = func(core int) cpu.Stream {
			return workload.NewGenerator(c.Workload, core, 7)
		}
	})
	if c.Key() != "" {
		t.Fatal("NewStream config has a cache key")
	}
	if _, err := p.RunAll([]sim.Config{c, c}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := p.CacheStats(); hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", hits, misses)
	}
}

// TestErrorPropagates: a bad config fails its job without poisoning the
// others, and RunAll reports the first error in input order.
func TestErrorPropagates(t *testing.T) {
	p := New(2)
	jobs := []sim.Config{
		cfg(t, "bwaves", nil),
		cfg(t, "bwaves", func(c *sim.Config) { c.Tracker = "bogus" }),
	}
	res, err := p.RunAll(jobs)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v", err)
	}
	if res[0].MC.Acts == 0 {
		t.Error("healthy job did not complete")
	}
	// The failure is cached too: re-running returns the same error.
	if _, err2 := p.Run(jobs[1]); err2 == nil {
		t.Error("cached failure did not re-report its error")
	}
}

// TestProgressAccounting: every submitted job produces exactly one
// progress callback, with monotonically complete final state.
func TestProgressAccounting(t *testing.T) {
	p := New(4)
	var mu sync.Mutex
	var last Progress
	calls := 0
	p.OnProgress = func(pr Progress) {
		mu.Lock()
		last = pr
		calls++
		mu.Unlock()
	}
	jobs := []sim.Config{
		cfg(t, "bwaves", nil),
		cfg(t, "bwaves", nil), // cache hit
		cfg(t, "mcf", nil),
	}
	if _, err := p.RunAll(jobs); err != nil {
		t.Fatal(err)
	}
	if calls != 3 || last.Done != 3 || last.Total != 3 || last.CacheHits != 1 {
		t.Fatalf("calls=%d last=%+v", calls, last)
	}
}
