// Package runner is the parallel experiment engine: it executes batches of
// simulation jobs on a bounded worker pool and memoizes their results, so
// experiment sweeps (internal/exp) run one simulation per distinct
// configuration per process, spread across all CPUs, while producing
// byte-identical output to serial execution.
//
// # Determinism
//
// RunAll returns results in the order the jobs were submitted, regardless
// of the order workers complete them, and sim.Run is a pure function of
// its config (see the internal/sim determinism contract). Together these
// make the pool's parallelism unobservable in the results: for a fixed
// seed, a table built from RunAll(jobs) with 1 worker is byte-identical to
// the same table built with N workers. The repository's
// TestSerialParallelIdentical runs under -race to enforce this.
//
// # Caching
//
// Results are memoized under sim.Config.Key(), which covers every
// simulation-relevant field after normalizing defaults (workload profile,
// cores, instructions, mechanism, TH, mapping, policy, tracker, PRACETh,
// retry wait, RAA factor, prefetch degree, seed, fault config). In-flight
// deduplication is singleflight-style: if two jobs with the same key are
// submitted concurrently, one simulation runs and both receive its result.
// Configs with a NewStream override have no key and are executed
// unconditionally.
//
// # Failure isolation
//
// A job that panics does not tear down the sweep: the panic is recovered
// per job and converted to a *PanicError carrying the config key and the
// stack, so the remaining jobs complete and the caller decides how to
// render the failure. Errors (including panics) are memoized like results
// — resubmitting a deterministic failure reproduces the error without
// re-running the simulation. The exception is cancellation: entries whose
// job was cut short by the caller's context are evicted, so a resumed
// sweep re-executes them.
//
// # Checkpoint/resume
//
// WriteCheckpoints streams every newly simulated result to a JSON-lines
// sink as it completes; LoadCheckpoint preloads a pool's cache from such a
// stream. Because results round-trip exactly through JSON and the cache is
// keyed by config, a sweep killed mid-run and resumed from its checkpoint
// produces byte-identical output to an uninterrupted run.
package runner
