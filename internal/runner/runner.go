// Package runner is the parallel experiment engine: it executes batches of
// simulation jobs on a bounded worker pool and memoizes their results, so
// experiment sweeps (internal/exp) run one simulation per distinct
// configuration per process, spread across all CPUs, while producing
// byte-identical output to serial execution.
//
// # Determinism
//
// RunAll returns results in the order the jobs were submitted, regardless
// of the order workers complete them, and sim.Run is a pure function of
// its config (see the internal/sim determinism contract). Together these
// make the pool's parallelism unobservable in the results: for a fixed
// seed, a table built from RunAll(jobs) with 1 worker is byte-identical to
// the same table built with N workers. The repository's
// TestSerialParallelIdentical runs under -race to enforce this.
//
// # Caching
//
// Results are memoized under sim.Config.Key(), which covers every
// simulation-relevant field after normalizing defaults (workload profile,
// cores, instructions, mechanism, TH, mapping, policy, tracker, PRACETh,
// retry wait, RAA factor, prefetch degree, seed). In-flight deduplication
// is singleflight-style: if two jobs with the same key are submitted
// concurrently, one simulation runs and both receive its result. Configs
// with a NewStream override have no key and are executed unconditionally.
package runner

import (
	"runtime"
	"sync"
	"time"

	"autorfm/internal/sim"
)

// Progress is a snapshot of a pool's job accounting, delivered to the
// OnProgress callback after every job completes.
type Progress struct {
	// Done and Total count jobs completed and submitted so far. Cache
	// hits count as completed jobs (they were asked for and answered).
	Done, Total int
	// CacheHits is how many of the Done jobs were served from the cache
	// or coalesced onto an in-flight simulation.
	CacheHits int
	// Elapsed is the time since the pool ran its first job.
	Elapsed time.Duration
	// ETA estimates the remaining time from the mean per-job cost so
	// far; zero when nothing is pending.
	ETA time.Duration
}

// Pool runs simulation jobs on a fixed number of workers with a shared
// result cache. The zero value is not usable; use New. A Pool is safe for
// concurrent use by multiple goroutines.
type Pool struct {
	// OnProgress, when non-nil, is called after every completed job with
	// a Progress snapshot. Set it before submitting jobs; it may be
	// called from multiple goroutines, but never concurrently.
	OnProgress func(Progress)

	sem chan struct{} // bounds concurrent simulations

	mu    sync.Mutex // guards cache
	cache map[string]*entry

	pmu       sync.Mutex // guards progress counters and OnProgress calls
	done      int
	submitted int
	hits      int
	started   time.Time
}

// entry is one memoized (possibly in-flight) simulation.
type entry struct {
	ready chan struct{} // closed when res/err are valid
	res   sim.Result
	err   error
}

// New returns a pool running at most workers simulations concurrently;
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{
		sem:   make(chan struct{}, workers),
		cache: make(map[string]*entry),
	}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// CacheStats returns how many completed jobs were served from the cache
// (or coalesced onto an in-flight duplicate) versus actually simulated.
func (p *Pool) CacheStats() (hits, misses int) {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.hits, p.done - p.hits
}

// Run executes one job, consulting the cache first. Concurrent callers
// are bounded by the pool's worker count.
func (p *Pool) Run(cfg sim.Config) (sim.Result, error) {
	p.jobSubmitted()

	key := cfg.Key()
	if key == "" {
		// Uncacheable (caller-supplied stream): run directly.
		p.sem <- struct{}{}
		res, err := sim.Run(cfg)
		<-p.sem
		p.jobDone(false)
		return res, err
	}

	p.mu.Lock()
	if e, ok := p.cache[key]; ok {
		p.mu.Unlock()
		<-e.ready
		p.jobDone(true)
		return e.res, e.err
	}
	e := &entry{ready: make(chan struct{})}
	p.cache[key] = e
	p.mu.Unlock()

	p.sem <- struct{}{}
	e.res, e.err = sim.Run(cfg)
	<-p.sem
	close(e.ready)
	p.jobDone(false)
	return e.res, e.err
}

// RunAll executes the jobs in parallel and returns their results in input
// order, regardless of completion order. If any job fails, the first
// error in input order is returned (results of successful jobs are still
// filled in).
func (p *Pool) RunAll(cfgs []sim.Config) ([]sim.Result, error) {
	results := make([]sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.Run(cfgs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

func (p *Pool) jobSubmitted() {
	p.pmu.Lock()
	if p.started.IsZero() {
		p.started = time.Now()
	}
	p.submitted++
	p.pmu.Unlock()
}

func (p *Pool) jobDone(cached bool) {
	p.pmu.Lock()
	p.done++
	if cached {
		p.hits++
	}
	cb := p.OnProgress
	var snap Progress
	if cb != nil {
		snap = Progress{
			Done:      p.done,
			Total:     p.submitted,
			CacheHits: p.hits,
			Elapsed:   time.Since(p.started),
		}
		if p.done > 0 && snap.Total > snap.Done {
			perJob := snap.Elapsed / time.Duration(p.done)
			snap.ETA = perJob * time.Duration(snap.Total-snap.Done)
		}
		cb(snap)
	}
	p.pmu.Unlock()
}
