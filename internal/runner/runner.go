package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"autorfm/internal/sim"
)

// PanicError is a recovered per-job panic, converted to an error so one
// crashing simulation cannot tear down a whole sweep.
type PanicError struct {
	Key   string      // sim.Config.Key() of the failed job ("" if uncacheable)
	Value interface{} // the value the job panicked with
	Stack []byte      // goroutine stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v", e.Value)
}

// TimeoutError reports a job cut short by the pool's per-job wall-clock
// limit (Pool.JobTimeout), as opposed to a caller-cancelled context or a
// panic. It unwraps to context.DeadlineExceeded so errors.Is-based callers
// keep working, while renderers (internal/exp footnotes) can say "timeout
// after Xs" instead of the generic cause. Like any deterministic job
// property it is memoized; raising the timeout requires a fresh pool.
type TimeoutError struct {
	Key   string        // sim.Config.Key() of the expired job ("" if uncacheable)
	Limit time.Duration // the JobTimeout that expired
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("timeout after %v", e.Limit)
}

// Unwrap lets errors.Is(err, context.DeadlineExceeded) see through the type.
func (e *TimeoutError) Unwrap() error { return context.DeadlineExceeded }

// FirstError returns the first non-nil error in input order, or nil. It is
// the standard reduction over RunAll's per-job error slice for callers that
// only need fail-fast semantics.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Progress is a snapshot of a pool's job accounting, delivered to the
// OnProgress callback after every job completes.
type Progress struct {
	// Done and Total count jobs completed and submitted so far. Cache
	// hits count as completed jobs (they were asked for and answered).
	Done, Total int
	// CacheHits is how many of the Done jobs were served from the cache
	// or coalesced onto an in-flight simulation.
	CacheHits int
	// Failed is how many of the Done jobs returned an error (including
	// recovered panics, timeouts and cancellations).
	Failed int
	// Events is the total number of discrete events dispatched by the jobs
	// actually simulated so far (cache hits re-deliver a result without
	// re-dispatching its events).
	Events int64
	// Elapsed is the time since the pool ran its first job.
	Elapsed time.Duration
	// SimElapsed is the time since the pool started its first actual
	// simulation — the window throughput rates belong to. It lags Elapsed
	// when a sweep opens with a cache/checkpoint/store-hit preload (a
	// resumed sweep answers its prefix in microseconds), and stays zero
	// until something simulates, so rates computed over it are not skewed
	// optimistic by the preload.
	SimElapsed time.Duration
	// ETA estimates the remaining time from the mean cost of the jobs
	// actually simulated so far; zero when nothing is pending or no job
	// has been simulated yet (cache hits carry no timing signal).
	ETA time.Duration
}

// Phase names reported to Pool.OnJobPhase. They match the worker-side
// span names of internal/obs (which runner must not import).
const (
	// PhaseQueue is the wait for a worker slot.
	PhaseQueue = "queue"
	// PhaseRun is the machine execution of the job.
	PhaseRun = "run"
)

// Pool runs simulation jobs on a fixed number of workers with a shared
// result cache. The zero value is not usable; use New. A Pool is safe for
// concurrent use by multiple goroutines.
type Pool struct {
	// OnProgress, when non-nil, is called after every completed job with
	// a Progress snapshot. Set it before submitting jobs; it may be
	// called from multiple goroutines, but never concurrently.
	OnProgress func(Progress)

	// JobTimeout, when > 0, bounds each job's wall-clock time: a job
	// exceeding it fails with context.DeadlineExceeded while the rest of
	// the sweep proceeds. Unlike caller cancellation, a timeout is a
	// deterministic property of the job and is memoized like any error.
	// Set it before submitting jobs.
	JobTimeout time.Duration

	// Instrument, when non-nil, is called for every job the pool actually
	// simulates — after cache lookup, on the worker goroutine, with the
	// job's private config copy — so the caller can attach per-run telemetry
	// (sim.Config.Telemetry) without touching cached jobs: cache hits
	// re-deliver results without re-emitting telemetry. Because telemetry
	// is excluded from the cache key, the mutation must not change the
	// simulation outcome. Set it before submitting jobs; it may be called
	// concurrently from multiple workers.
	Instrument func(cfg *sim.Config, key string)

	// BatchFlush bounds how long a partially filled lane-batch group waits
	// for more same-config seeds before running below its target width;
	// zero means a small default. Only consulted for jobs with
	// sim.Config.Batch > 1. Set it before submitting jobs.
	BatchFlush time.Duration

	// OnJobPhase, when non-nil, is called on the worker goroutine for
	// every job the pool actually simulates, once per execution phase
	// (PhaseQueue: the wait for a worker slot; PhaseRun: the machine run)
	// with the phase's wall-clock bounds — the hook distributed workers
	// use to record execution spans without the runner importing the
	// observability layer. Cache hits report no phases. Like Instrument
	// it must not change the simulation outcome; unlike Instrument it is
	// compatible with lane batching (each lane reports its group's shared
	// window). Set it before submitting jobs; calls may be concurrent.
	OnJobPhase func(key, phase string, start, end time.Time)

	// AutoWiden, when MaxShards > 1, turns idle cores at a sweep's tail
	// into intra-simulation shard workers: once fewer jobs remain than
	// workers (for at least Debounce), unsharded, unbatched jobs are run
	// at a widened sim.Config.Shards. Set it before submitting jobs.
	AutoWiden AutoWiden

	sem chan struct{} // bounds concurrent simulations

	mu    sync.Mutex // guards cache
	cache map[string]*entry

	// groups holds the pending lane-batch groups (see batch.go).
	bmu    sync.Mutex
	groups map[string]*batchGroup

	// now overrides time.Now in the widening debounce for tests.
	now func() time.Time
	// tailSince is when the pending<workers tail condition started holding
	// (zero when it does not hold); guarded by pmu.
	tailSince time.Time

	// machines is a free list of warm sim.Machine allocations, one checked
	// out per in-flight simulation (so it never exceeds the worker count):
	// multi-seed same-config sweeps reuse the previous run's event queue,
	// LLC arrays, and device state via sim's Reset paths instead of
	// reconstructing them. Reuse is invisible in results — a Machine run is
	// byte-identical to a fresh run, and a Machine that hosted a panicking
	// or cancelled job rebuilds itself on its next use.
	mmu      sync.Mutex
	machines []*sim.Machine

	cmu    sync.Mutex // guards cw and cfails
	cw     io.Writer  // checkpoint sink, nil when disabled
	cfails uint64     // checkpoint writes that returned an error
	cwarn  sync.Once  // first failure warns on stderr; the rest only count

	pmu        sync.Mutex // guards progress counters and OnProgress calls
	done       int
	submitted  int
	hits       int
	failed     int
	events     int64
	started    time.Time
	simStarted time.Time // when the first actual simulation began
}

// entry is one memoized (possibly in-flight) simulation.
type entry struct {
	ready chan struct{} // closed when res/err are valid
	res   sim.Result
	err   error
}

// New returns a pool running at most workers simulations concurrently;
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{
		sem:   make(chan struct{}, workers),
		cache: make(map[string]*entry),
	}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// CacheStats returns how many completed jobs were served from the cache
// (or coalesced onto an in-flight duplicate) versus actually simulated.
func (p *Pool) CacheStats() (hits, misses int) {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.hits, p.done - p.hits
}

// SimulatedEvents returns the total number of discrete events dispatched by
// jobs this pool actually simulated (cache hits re-deliver a result without
// re-dispatching its events). Together with wall-clock time it yields the
// events/sec figure the BENCH_*.json trajectory records.
func (p *Pool) SimulatedEvents() int64 {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.events
}

// Run executes one job, consulting the cache first. Concurrent callers
// are bounded by the pool's worker count. A panicking job returns a
// *PanicError; a job cut short by ctx returns ctx's error and is not
// memoized, so a later submission (e.g. a resumed sweep) re-executes it.
func (p *Pool) Run(ctx context.Context, cfg sim.Config) (sim.Result, error) {
	p.jobSubmitted()

	key := cfg.Key()
	if key == "" {
		// Uncacheable (caller-supplied stream): run directly.
		res, err := p.simulate(ctx, cfg, key)
		p.jobDone(false, err != nil)
		return res, err
	}

	p.mu.Lock()
	if e, ok := p.cache[key]; ok {
		p.mu.Unlock()
		select {
		case <-e.ready:
			p.jobDone(true, e.err != nil)
			return e.res, e.err
		case <-ctx.Done():
			p.jobDone(false, true)
			return sim.Result{}, ctx.Err()
		}
	}
	e := &entry{ready: make(chan struct{})}
	p.cache[key] = e
	p.mu.Unlock()

	if p.batchEligible(cfg) {
		// Lane batching: the job joins its config family's pending group
		// and runs as one lane of a machine batch. runBatched fills e and
		// closes e.ready itself (possibly on another lane's goroutine).
		res, err := p.runBatched(ctx, cfg, key, e)
		p.jobDone(false, err != nil)
		return res, err
	}

	e.res, e.err = p.simulate(ctx, cfg, key)
	if e.err != nil && ctx.Err() != nil {
		// Caller cancellation is not a property of the job; evict so a
		// resumed sweep re-runs it. Waiters still receive the error.
		p.mu.Lock()
		delete(p.cache, key)
		p.mu.Unlock()
	}
	close(e.ready)
	p.jobDone(false, e.err != nil)
	return e.res, e.err
}

// simulate runs one job on a worker slot, recovering panics into
// *PanicError, applying the per-job timeout, and checkpointing successful
// results.
func (p *Pool) simulate(ctx context.Context, cfg sim.Config, key string) (res sim.Result, err error) {
	var qStart time.Time
	if p.OnJobPhase != nil {
		qStart = p.clock()
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return sim.Result{}, ctx.Err()
	}
	defer func() { <-p.sem }()
	p.markSimStarted()
	if p.OnJobPhase != nil {
		p.OnJobPhase(key, PhaseQueue, qStart, p.clock())
	}

	if p.JobTimeout > 0 {
		outer := ctx
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.JobTimeout)
		defer cancel()
		// Runs after the recover defer below (LIFO): when the inner deadline
		// fired but the caller's context is still live, the expiry is the
		// job's own timeout, not a cancellation — surface it typed.
		defer func() {
			if errors.Is(err, context.DeadlineExceeded) && outer.Err() == nil {
				err = &TimeoutError{Key: key, Limit: p.JobTimeout}
			}
		}()
	}
	defer func() {
		if v := recover(); v != nil {
			res = sim.Result{}
			err = &PanicError{Key: key, Value: v, Stack: debug.Stack()}
		}
	}()
	if p.Instrument != nil {
		p.Instrument(&cfg, key)
	}
	if w := p.widenWidth(cfg); w > 0 {
		cfg.Shards = w
	}
	m := p.getMachine()
	defer p.putMachine(m)
	var rStart time.Time
	if p.OnJobPhase != nil {
		rStart = p.clock()
		// LIFO: runs before the recover defer, so even a panicking job's
		// run phase gets its end stamp.
		defer func() { p.OnJobPhase(key, PhaseRun, rStart, p.clock()) }()
	}
	res, err = m.RunCtx(ctx, cfg)
	if err == nil {
		p.pmu.Lock()
		p.events += res.Events
		p.pmu.Unlock()
		p.checkpoint(key, res)
	}
	return res, err
}

// getMachine checks a warm machine out of the free list (or makes a cold
// one). Callers hold a worker slot, so at most Workers() machines exist.
func (p *Pool) getMachine() *sim.Machine {
	p.mmu.Lock()
	defer p.mmu.Unlock()
	if n := len(p.machines); n > 0 {
		m := p.machines[n-1]
		p.machines = p.machines[:n-1]
		return m
	}
	return &sim.Machine{}
}

// putMachine returns a machine to the free list. It runs even when the job
// panicked — the machine marks itself dirty and rebuilds on next use.
func (p *Pool) putMachine(m *sim.Machine) {
	p.mmu.Lock()
	p.machines = append(p.machines, m)
	p.mmu.Unlock()
}

// RunAll executes the jobs in parallel and returns their results and
// errors in input order, regardless of completion order: errs[i] is nil
// exactly when results[i] is valid. Failed jobs do not prevent the others
// from completing; reduce the slice with FirstError for fail-fast
// semantics.
func (p *Pool) RunAll(ctx context.Context, cfgs []sim.Config) ([]sim.Result, []error) {
	results := make([]sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.Run(ctx, cfgs[i])
		}(i)
	}
	wg.Wait()
	return results, errs
}

func (p *Pool) jobSubmitted() {
	p.pmu.Lock()
	if p.started.IsZero() {
		p.started = p.clock()
	}
	p.submitted++
	p.pmu.Unlock()
}

// markSimStarted anchors the simulation window at the first job that
// actually reaches a machine. A resumed or store-preloaded sweep answers
// its cached prefix without ever calling this, so rate and ETA math over
// Progress.SimElapsed ignores that prefix entirely.
func (p *Pool) markSimStarted() {
	p.pmu.Lock()
	if p.simStarted.IsZero() {
		p.simStarted = p.clock()
	}
	p.pmu.Unlock()
}

func (p *Pool) jobDone(cached, failed bool) {
	p.pmu.Lock()
	p.done++
	if cached {
		p.hits++
	}
	if failed {
		p.failed++
	}
	cb := p.OnProgress
	if cb != nil {
		now := p.clock()
		snap := Progress{
			Done:      p.done,
			Total:     p.submitted,
			CacheHits: p.hits,
			Failed:    p.failed,
			Events:    p.events,
			Elapsed:   now.Sub(p.started),
		}
		if !p.simStarted.IsZero() {
			snap.SimElapsed = now.Sub(p.simStarted)
		}
		snap.ETA = estimateETA(p.done, p.hits, p.submitted, snap.SimElapsed)
		cb(snap)
	}
	p.pmu.Unlock()
}

// estimateETA predicts the remaining wall-clock time of a sweep from the
// mean cost of the jobs simulated so far, over the simulation window
// (Progress.SimElapsed) rather than pool lifetime. Cache hits are
// excluded from the per-job cost (they complete in microseconds and would
// collapse the estimate), so an all-hits prefix yields no estimate rather
// than a bogus one — and a resumed sweep's preload, which completes
// before the window opens, cannot tilt the estimate optimistic. Returns
// 0 — "no estimate" — when nothing is pending, nothing has been
// simulated, or the clock hasn't advanced; never negative.
func estimateETA(done, hits, total int, elapsed time.Duration) time.Duration {
	pending := total - done
	simulated := done - hits
	if pending <= 0 || simulated <= 0 || elapsed <= 0 {
		return 0
	}
	eta := elapsed / time.Duration(simulated) * time.Duration(pending)
	if eta < 0 {
		return 0
	}
	return eta
}
