package runner_test

import (
	"context"
	"fmt"

	"autorfm/internal/dram"
	"autorfm/internal/runner"
	"autorfm/internal/sim"
	"autorfm/internal/workload"
)

// Example runs a three-job sweep — the no-mitigation baseline, RFM-4 and
// AutoRFM-4 on one workload — across four workers. Results arrive in input
// order whatever the completion order; because the baseline and the two
// mitigated runs share workload, instructions and seed, re-submitting the
// whole sweep costs nothing (three cache hits).
func Example() {
	p, err := workload.ByName("bwaves")
	if err != nil {
		panic(err)
	}
	base := sim.Config{Workload: p, InstructionsPerCore: 30_000, Seed: 1}
	rfm := base
	rfm.Mode, rfm.TH = dram.ModeRFM, 4
	auto := base
	auto.Mode, auto.TH, auto.Mapping = dram.ModeAutoRFM, 4, "rubix"

	ctx := context.Background()
	pool := runner.New(4)
	results, errs := pool.RunAll(ctx, []sim.Config{base, rfm, auto})
	if err := runner.FirstError(errs); err != nil {
		panic(err)
	}
	fmt.Println("jobs:", len(results))
	fmt.Println("RFM-4 slower than AutoRFM-4:",
		sim.Slowdown(results[0], results[1]) > sim.Slowdown(results[0], results[2]))

	if _, errs := pool.RunAll(ctx, []sim.Config{base, rfm, auto}); runner.FirstError(errs) != nil {
		panic(runner.FirstError(errs))
	}
	hits, misses := pool.CacheStats()
	fmt.Printf("cache: %d hits, %d simulations\n", hits, misses)
	// Output:
	// jobs: 3
	// RFM-4 slower than AutoRFM-4: true
	// cache: 3 hits, 3 simulations
}
